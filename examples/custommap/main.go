// Custom structures from ASCII maps: design an amoebot structure in a
// string (or a file), mark sources 'S' and destinations 'D', and compute
// the shortest path forest on it. Note the triangular adjacency: a cell is
// also adjacent to its lower-left and upper-right diagonal neighbors.
package main

import (
	"fmt"
	"log"

	"spforest/amoebot"
	"spforest/engine"
)

// A serpentine structure: two sources at opposite ends, destinations deep
// inside the bends. Shortest paths must wind around the gaps (one column
// per character; '.' and ' ' are empty cells).
const layout = `Soooooooooo
..........o
oDooooooooo
o..........
oooooooDooo
..........o
ooooooooooS`

func main() {
	s, marks, err := amoebot.ParseMap(layout)
	if err != nil {
		log.Fatal(err)
	}
	// The engine validates the structure (connected, hole-free) once at
	// construction.
	eng, err := engine.New(s, nil)
	if err != nil {
		log.Fatal(err)
	}
	sources := marks['S']
	dests := marks['D']
	fmt.Printf("structure: %d amoebots, diameter %d, %d sources, %d destinations\n",
		s.N(), s.Diameter(), len(sources), len(dests))

	res, err := eng.Run(engine.Query{Algo: engine.AlgoForest, Sources: sources, Dests: dests})
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Verify(sources, dests, res.Forest); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("forest: %d simulated rounds\n\n", res.Stats.Rounds)

	// Render: sources, destinations, and the amoebots on the delivery
	// paths.
	srcIdx := map[int32]bool{}
	for _, c := range sources {
		i, _ := s.Index(c)
		srcIdx[i] = true
	}
	dstIdx := map[int32]bool{}
	for _, c := range dests {
		i, _ := s.Index(c)
		dstIdx[i] = true
	}
	fmt.Print(s.Render(func(i int32) rune {
		switch {
		case srcIdx[i]:
			return 'S'
		case dstIdx[i]:
			return 'D'
		case res.Forest.Member(i):
			return '*'
		default:
			return '.'
		}
	}))
	for _, d := range dests {
		i, _ := s.Index(d)
		root := res.Forest.RootOf(i)
		fmt.Printf("destination %v <- source %v, path length %d\n",
			d, s.Coord(root), res.Forest.Depth(i))
	}
}
